// Package ssd simulates NVMe SSDs at the fidelity the Rio paper depends on:
// multi-channel internal parallelism (so completion order differs from
// submission order), a volatile write cache with an expensive device-wide
// FLUSH on flash profiles, power-loss protection (PLP) on Optane profiles,
// a byte-addressable persistent memory region (PMR), and power-cut
// semantics in which volatile state is lost while media and PMR survive.
//
// Content is tracked per logical block as a Rec carrying a 64-bit stamp
// (the identity of the write, used by crash-consistency checks) and an
// optional real payload (used by file-system metadata). With
// Config.KeepHistory the device retains the full per-LBA write history so
// recovery can roll blocks back, modelling out-of-place updates.
package ssd

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// BlockSize is the logical block size in bytes (4 KB, as in the paper's
// workloads).
const BlockSize = 4096

// Profile selects the device personality.
type Profile int

const (
	// Flash models a consumer NVMe flash SSD (Samsung PM981-like): fast
	// volatile write cache, no PLP, device-wide expensive FLUSH.
	Flash Profile = iota
	// Optane models a PLP low-latency SSD (Intel 905P/P4800X-like): writes
	// are durable on completion and FLUSH is nearly free.
	Optane
)

func (p Profile) String() string {
	if p == Flash {
		return "flash"
	}
	return "optane"
}

// Config holds the device parameters. All latencies are per the unit noted.
type Config struct {
	Name    string
	Profile Profile

	Channels      int      // parallel media units
	MediaWriteLat sim.Time // per-block media program time
	MediaReadLat  sim.Time // per-block media read time

	// Flash-only cache parameters.
	CacheInsertLat sim.Time // per-block volatile-cache landing time
	FrontWidth     int      // parallel cache-insert engines
	CacheCap       int      // max dirty blocks buffered

	FlushBase      sim.Time // fixed FLUSH cost (flash)
	FlushPerBlock  sim.Time // additional FLUSH cost per dirty block (flash)
	OptaneFlushLat sim.Time // FLUSH ack latency on PLP devices

	PMRSize     int      // bytes of persistent memory region
	PMRWriteLat sim.Time // persistence latency of one MMIO burst

	MaxTransferBlocks int // per-command limit (128 KB => 32)

	KeepHistory bool // retain per-LBA history for crash tests

	// Saturation model. With SatKnee > 0, a channel whose backlog exceeds
	// the knee inflates media time for the segment at hand: the effective
	// latency grows linearly with the excess depth (M/M/1-style service
	// degradation from contention inside the device — ECC retries, mapping
	// table pressure, write amplification) and is capped at SatFactorMax×
	// the nominal latency. 0 disables the model entirely; the stock
	// profiles leave it off, so calibrated behavior is untouched.
	SatKnee      int     // per-channel queue depth where inflation starts
	SatFactorMax float64 // latency inflation ceiling; 0 selects 8 when SatKnee > 0
}

// FlashConfig returns the default flash profile, calibrated so a saturated
// device sustains ~320K 4KB writes/s and FLUSH costs hundreds of µs.
func FlashConfig() Config {
	return Config{
		Name:              "pm981",
		Profile:           Flash,
		Channels:          8,
		MediaWriteLat:     25 * sim.Microsecond,
		MediaReadLat:      60 * sim.Microsecond,
		CacheInsertLat:    6 * sim.Microsecond, // ~330K blk/s buffered write rate
		FrontWidth:        2,
		CacheCap:          4096,
		FlushBase:         250 * sim.Microsecond,
		FlushPerBlock:     300,
		OptaneFlushLat:    0,
		PMRSize:           2 << 20,
		PMRWriteLat:       600,
		MaxTransferBlocks: 32,
	}
}

// OptaneConfig returns the default PLP profile (~580K 4KB writes/s).
func OptaneConfig() Config {
	return Config{
		Name:              "905p",
		Profile:           Optane,
		Channels:          7,
		MediaWriteLat:     12 * sim.Microsecond,
		MediaReadLat:      10 * sim.Microsecond,
		CacheInsertLat:    0,
		FrontWidth:        4,
		CacheCap:          0,
		FlushBase:         0,
		FlushPerBlock:     0,
		OptaneFlushLat:    2 * sim.Microsecond,
		PMRSize:           2 << 20,
		PMRWriteLat:       600,
		MaxTransferBlocks: 32,
	}
}

// Op is a command opcode.
type Op uint8

const (
	OpWrite Op = iota
	OpRead
	OpFlush
	// OpErase removes the durable records matching the command's stamps
	// (recovery roll-back of out-of-place blocks, §4.4.1). It costs media
	// time like a write (deallocate + mapping update).
	OpErase
)

// Rec is the content of one logical block.
type Rec struct {
	Stamp uint64
	Data  []byte // optional real payload (file-system metadata)
}

// Command is one NVMe command. Done is invoked in engine context exactly
// once when the command completes; it is never invoked for commands that
// were in flight across a power cut.
type Command struct {
	Op     Op
	LBA    uint64
	Blocks uint32
	Stamps []uint64 // per-block write identity; required for writes
	Data   [][]byte // optional per-block payloads (may be nil)
	Done   func(*Command)

	// Out is filled by reads: the per-block records observed.
	Out []Rec

	// SatWait accumulates the saturation-model stall charged to this
	// command's segments (the share of service time past the knee) —
	// stage-tracing attribution; plain accounting, never read by the
	// device itself.
	SatWait sim.Time

	pending int
	epoch   uint64
}

// Stats are cumulative device counters.
type Stats struct {
	Writes       int64 // completed write commands
	WrittenBlks  int64
	Reads        int64
	Flushes      int64
	FlushBusy    sim.Time // total time the device was stalled by FLUSH
	Destaged     int64    // flash blocks programmed from cache to media
	LostOnCut    int64    // dirty blocks dropped by power cuts
	AbortedCmds  int64    // commands in flight at a power cut
	StaleSegs    int64    // segments discarded by epoch checks
	MaxDirtySeen int
	SatStall     sim.Time // extra media time charged by the saturation model
}

type segment struct {
	lba   uint64
	recs  []Rec
	read  bool
	erase bool
	cmd   *Command
	epoch uint64
}

// SSD is one simulated device.
type SSD struct {
	eng *sim.Engine
	cfg Config

	media map[uint64][]Rec // durable content (history; last = current)
	cache map[uint64]Rec   // flash volatile dirty blocks
	dirty int
	pmr   []byte

	front       *sim.Resource
	chanQs      []*sim.Queue[segment]
	chanBusy    *sim.Resource // busy-time accounting across channels
	destageCond *sim.Cond
	cacheCond   *sim.Cond
	flushMu     *sim.Resource
	flushing    bool
	flushCond   *sim.Cond

	epoch uint64
	dead  bool

	stats Stats
}

// New creates a device and starts its channel processes.
func New(e *sim.Engine, cfg Config) *SSD {
	if cfg.Channels <= 0 || cfg.MaxTransferBlocks <= 0 {
		panic("ssd: invalid config")
	}
	if cfg.FrontWidth <= 0 {
		cfg.FrontWidth = 1
	}
	if cfg.SatKnee < 0 {
		panic("ssd: SatKnee must be >= 0")
	}
	if cfg.SatKnee > 0 && cfg.SatFactorMax <= 1 {
		cfg.SatFactorMax = 8
	}
	s := &SSD{
		eng:         e,
		cfg:         cfg,
		media:       make(map[uint64][]Rec),
		cache:       make(map[uint64]Rec),
		pmr:         make([]byte, cfg.PMRSize),
		front:       sim.NewResource(e, cfg.FrontWidth),
		chanBusy:    sim.NewResource(e, cfg.Channels),
		destageCond: sim.NewCond(e),
		cacheCond:   sim.NewCond(e),
		flushMu:     sim.NewResource(e, 1),
		flushCond:   sim.NewCond(e),
	}
	for i := 0; i < cfg.Channels; i++ {
		q := sim.NewQueue[segment](e)
		s.chanQs = append(s.chanQs, q)
		e.Go(fmt.Sprintf("%s/chan%d", cfg.Name, i), func(p *sim.Proc) {
			s.channelLoop(p, q)
		})
	}
	return s
}

// Config returns the device configuration.
func (s *SSD) Config() Config { return s.cfg }

// HasPLP reports whether completed writes are durable without FLUSH.
func (s *SSD) HasPLP() bool { return s.cfg.Profile == Optane }

// Stats returns a copy of the cumulative counters.
func (s *SSD) Stats() Stats { return s.stats }

func (s *SSD) chanOf(lba uint64) int { return int(lba % uint64(s.cfg.Channels)) }

// Submit accepts a command. It must be called from engine context (a
// callback or a Proc). The command is processed asynchronously.
func (s *SSD) Submit(cmd *Command) {
	if s.dead {
		return // device is powered off: command is silently lost
	}
	if cmd.Op != OpFlush && int(cmd.Blocks) > s.cfg.MaxTransferBlocks {
		panic(fmt.Sprintf("ssd: command of %d blocks exceeds max transfer %d",
			cmd.Blocks, s.cfg.MaxTransferBlocks))
	}
	if cmd.Op == OpWrite && len(cmd.Stamps) != int(cmd.Blocks) {
		panic("ssd: write must carry one stamp per block")
	}
	cmd.epoch = s.epoch
	s.eng.Go(s.cfg.Name+"/cmd", func(p *sim.Proc) { s.execute(p, cmd) })
}

func (s *SSD) execute(p *sim.Proc, cmd *Command) {
	switch cmd.Op {
	case OpWrite:
		if s.cfg.Profile == Flash {
			s.execFlashWrite(p, cmd)
		} else {
			s.execOptaneWrite(cmd)
		}
	case OpRead:
		s.execRead(p, cmd)
	case OpFlush:
		s.execFlush(p, cmd)
	case OpErase:
		s.execErase(cmd)
	}
}

// execFlashWrite lands blocks in the volatile cache and completes; media
// programming happens in the background via destage segments.
func (s *SSD) execFlashWrite(p *sim.Proc, cmd *Command) {
	s.front.Acquire(p)
	// Respect an active FLUSH (device-wide stall) and cache capacity.
	for (s.flushing || s.dirty+int(cmd.Blocks) > s.cfg.CacheCap) && cmd.epoch == s.epoch {
		if s.flushing {
			s.flushCond.Wait(p)
		} else {
			s.cacheCond.Wait(p)
		}
	}
	if cmd.epoch != s.epoch {
		s.front.Release()
		return
	}
	// One command pays full landing cost for its first block; subsequent
	// blocks stream at a third of that (per-command overhead dominates the
	// DRAM landing, so large writes are cheaper per byte than scattered
	// small ones).
	insert := s.cfg.CacheInsertLat
	if cmd.Blocks > 1 {
		insert += s.cfg.CacheInsertLat * sim.Time(cmd.Blocks-1) / 3
	}
	p.Sleep(insert)
	if cmd.epoch != s.epoch {
		s.front.Release()
		return
	}
	for i := uint32(0); i < cmd.Blocks; i++ {
		lba := cmd.LBA + uint64(i)
		rec := Rec{Stamp: cmd.Stamps[i]}
		if cmd.Data != nil && cmd.Data[i] != nil {
			rec.Data = append([]byte(nil), cmd.Data[i]...)
		}
		s.cache[lba] = rec
		s.dirty++
		s.chanQs[s.chanOf(lba)].Push(segment{lba: lba, recs: []Rec{rec}, epoch: s.epoch})
	}
	if s.dirty > s.stats.MaxDirtySeen {
		s.stats.MaxDirtySeen = s.dirty
	}
	s.front.Release()
	s.stats.Writes++
	s.stats.WrittenBlks += int64(cmd.Blocks)
	s.complete(cmd)
}

// execOptaneWrite routes a write directly to per-channel media programming;
// completion fires when every block is durable (PLP semantics).
func (s *SSD) execOptaneWrite(cmd *Command) {
	cmd.pending = int(cmd.Blocks)
	for i := uint32(0); i < cmd.Blocks; i++ {
		lba := cmd.LBA + uint64(i)
		rec := Rec{Stamp: cmd.Stamps[i]}
		if cmd.Data != nil && cmd.Data[i] != nil {
			rec.Data = append([]byte(nil), cmd.Data[i]...)
		}
		s.chanQs[s.chanOf(lba)].Push(segment{
			lba: lba, recs: []Rec{rec}, cmd: cmd, epoch: s.epoch,
		})
	}
}

// execErase routes per-block roll-back through the channels so recovery
// pays realistic media time; the actual record removal happens at channel
// completion via Discard.
func (s *SSD) execErase(cmd *Command) {
	cmd.pending = int(cmd.Blocks)
	for i := uint32(0); i < cmd.Blocks; i++ {
		lba := cmd.LBA + uint64(i)
		s.chanQs[s.chanOf(lba)].Push(segment{
			lba: lba, recs: []Rec{{Stamp: cmd.Stamps[i]}}, erase: true,
			cmd: cmd, epoch: s.epoch,
		})
	}
}

func (s *SSD) execRead(p *sim.Proc, cmd *Command) {
	cmd.Out = make([]Rec, cmd.Blocks)
	cmd.pending = 0
	var miss []uint32
	for i := uint32(0); i < cmd.Blocks; i++ {
		lba := cmd.LBA + uint64(i)
		if rec, ok := s.cache[lba]; ok {
			cmd.Out[i] = rec
			continue
		}
		miss = append(miss, i)
	}
	if len(miss) == 0 {
		// Cache hit: controller-only latency.
		p.Sleep(2 * sim.Microsecond)
		if cmd.epoch == s.epoch {
			s.stats.Reads++
			s.complete(cmd)
		}
		return
	}
	cmd.pending = len(miss)
	for _, i := range miss {
		lba := cmd.LBA + uint64(i)
		s.chanQs[s.chanOf(lba)].Push(segment{
			lba: lba, read: true, cmd: cmd, epoch: s.epoch,
		})
	}
}

// execFlush implements the storage barrier. On flash it stalls the device,
// waits for every dirty block to be destaged and charges the drain cost; on
// Optane it acks almost immediately.
func (s *SSD) execFlush(p *sim.Proc, cmd *Command) {
	if s.cfg.Profile == Optane {
		p.Sleep(s.cfg.OptaneFlushLat)
		if cmd.epoch == s.epoch {
			s.stats.Flushes++
			s.complete(cmd)
		}
		return
	}
	s.flushMu.Acquire(p)
	if cmd.epoch != s.epoch {
		s.flushMu.Release()
		return
	}
	start := p.Now()
	s.flushing = true
	drainCost := s.cfg.FlushBase + s.cfg.FlushPerBlock*sim.Time(s.dirty)
	for s.dirty > 0 && cmd.epoch == s.epoch {
		s.destageCond.Wait(p)
	}
	if cmd.epoch != s.epoch {
		s.flushing = false
		s.flushMu.Release()
		return
	}
	p.Sleep(drainCost)
	s.flushing = false
	s.flushCond.Broadcast()
	s.stats.FlushBusy += p.Now() - start
	s.flushMu.Release()
	if cmd.epoch == s.epoch {
		s.stats.Flushes++
		s.complete(cmd)
	}
}

// channelLoop is one parallel media unit.
func (s *SSD) channelLoop(p *sim.Proc, q *sim.Queue[segment]) {
	for {
		seg := q.Pop(p)
		if seg.epoch != s.epoch {
			s.stats.StaleSegs++
			continue
		}
		s.chanBusy.Acquire(p)
		lat := s.cfg.MediaWriteLat
		if seg.read {
			lat = s.cfg.MediaReadLat
		}
		// Queue-depth-dependent service degradation: deterministic (no RNG
		// draw — the saturation model must not perturb seeded runs that
		// leave it off, and q.Len() is itself reproducible).
		if s.cfg.SatKnee > 0 {
			if depth := q.Len(); depth > s.cfg.SatKnee {
				f := 1 + float64(depth-s.cfg.SatKnee)/float64(s.cfg.SatKnee)
				if f > s.cfg.SatFactorMax {
					f = s.cfg.SatFactorMax
				}
				stall := sim.Time(float64(lat) * (f - 1))
				s.stats.SatStall += stall
				if seg.cmd != nil {
					seg.cmd.SatWait += stall
				}
				lat += stall
			}
		}
		p.Sleep(lat)
		s.chanBusy.Release()
		if seg.epoch != s.epoch {
			s.stats.StaleSegs++
			continue // power was cut mid-program: block not durable
		}
		if seg.read {
			rec, _ := s.Durable(seg.lba)
			i := seg.lba - seg.cmd.LBA
			seg.cmd.Out[i] = rec
			seg.cmd.pending--
			if seg.cmd.pending == 0 {
				s.stats.Reads++
				s.complete(seg.cmd)
			}
			continue
		}
		if seg.erase {
			s.Discard(seg.lba, seg.recs[0].Stamp)
			seg.cmd.pending--
			if seg.cmd.pending == 0 {
				s.complete(seg.cmd)
			}
			continue
		}
		// Write path: program media.
		s.applyMedia(seg.lba, seg.recs[0])
		if seg.cmd != nil {
			// Optane direct write.
			seg.cmd.pending--
			if seg.cmd.pending == 0 {
				s.stats.Writes++
				s.stats.WrittenBlks += int64(seg.cmd.Blocks)
				s.complete(seg.cmd)
			}
		} else {
			// Flash destage: only clears the dirty entry if the cache still
			// holds the same version (a newer overwrite re-queues its own
			// destage segment).
			if cur, ok := s.cache[seg.lba]; ok && cur.Stamp == seg.recs[0].Stamp {
				delete(s.cache, seg.lba)
			}
			s.dirty--
			s.stats.Destaged++
			s.destageCond.Broadcast()
			s.cacheCond.Broadcast()
		}
	}
}

func (s *SSD) applyMedia(lba uint64, rec Rec) {
	if s.cfg.KeepHistory {
		s.media[lba] = append(s.media[lba], rec)
	} else {
		s.media[lba] = []Rec{rec}
	}
}

func (s *SSD) complete(cmd *Command) {
	if cmd.Done != nil {
		done := cmd.Done
		s.eng.At(0, func() {
			if cmd.epoch == s.epoch {
				done(cmd)
			}
		})
	}
}

// Visible returns the device-visible content of lba (cache over media).
func (s *SSD) Visible(lba uint64) (Rec, bool) {
	if rec, ok := s.cache[lba]; ok {
		return rec, true
	}
	return s.Durable(lba)
}

// Durable returns the media (persistent) content of lba.
func (s *SSD) Durable(lba uint64) (Rec, bool) {
	h := s.media[lba]
	if len(h) == 0 {
		return Rec{}, false
	}
	return h[len(h)-1], true
}

// History returns the durable write history of lba (KeepHistory mode).
func (s *SSD) History(lba uint64) []Rec { return s.media[lba] }

// DurableLBAs returns the sorted list of LBAs holding durable content —
// replication uses it to compare replica media for divergence.
func (s *SSD) DurableLBAs() []uint64 {
	out := make([]uint64, 0, len(s.media))
	for lba, h := range s.media {
		if len(h) > 0 {
			out = append(out, lba)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Discard rolls lba back past any durable record with the given stamp,
// modelling recovery erasing an out-of-place block. It reports whether a
// record was removed.
func (s *SSD) Discard(lba uint64, stamp uint64) bool {
	h := s.media[lba]
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].Stamp == stamp {
			s.media[lba] = append(h[:i:i], h[i+1:]...)
			if len(s.media[lba]) == 0 {
				delete(s.media, lba)
			}
			return true
		}
	}
	return false
}

// PMRBytes exposes the persistent memory region. Callers model MMIO cost
// themselves (see Config.PMRWriteLat); the contents survive PowerCut.
func (s *SSD) PMRBytes() []byte { return s.pmr }

// PMRWriteLat returns the persistence latency of one MMIO burst.
func (s *SSD) PMRWriteLat() sim.Time { return s.cfg.PMRWriteLat }

// ChannelBusy returns the busy-time integral of the media channels.
func (s *SSD) ChannelBusy() sim.Time { return s.chanBusy.BusyTime() }

// PowerCut models an instant power failure: the volatile cache and every
// in-flight command are lost; media and PMR survive. The device ignores
// submissions until Restart.
func (s *SSD) PowerCut() {
	s.epoch++
	s.dead = true
	s.stats.LostOnCut += int64(len(s.cache))
	s.cache = make(map[uint64]Rec)
	s.dirty = 0
	s.flushing = false
	for _, q := range s.chanQs {
		s.stats.AbortedCmds += int64(q.Len())
		q.Drain()
	}
	// Wake anything stalled on cache space or flush so epoch checks run.
	s.cacheCond.Broadcast()
	s.flushCond.Broadcast()
	s.destageCond.Broadcast()
}

// Restart powers the device back on with media and PMR intact.
func (s *SSD) Restart() { s.dead = false }

// QueueDepths reports the per-channel backlog (diagnostics).
func (s *SSD) QueueDepths() []int {
	out := make([]int, len(s.chanQs))
	for i, q := range s.chanQs {
		out[i] = q.Len()
	}
	return out
}
