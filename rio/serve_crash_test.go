package rio

import (
	"fmt"
	"testing"

	"repro/internal/fs"
	"repro/internal/sim"
)

// Crash-consistency tests for the ported application tier: power-cut a
// replica member and an initiator server mid-Put / mid-journal-commit
// under live serve traffic, recover through the unified Fault/Recover
// surface, and prove that no acknowledged put is lost, no torn KV
// record survives (every durable WAL divides evenly into whole
// records), the recovered WAL is a monotonic prefix of the submitted
// puts, and the ordering audit stays clean.

// serveFSOpts sizes one tenant's file system for the crash tests.
func serveFSOpts(tenant int) FSOptions {
	o := FSOptions{
		Design:        RioFSFS,
		Journals:      4,
		JournalBlocks: 1024,
		MaxInodes:     1 << 12,
		DataBlocks:    1 << 18,
	}
	o.BaseLBA = uint64(tenant) * o.Blocks()
	return o
}

// serveKVOpts keeps the memtable large so no SST flush runs during the
// short test window: the durable record count is then exactly the WAL
// record count, which makes the monotonic-prefix bound tight.
func serveKVOpts() KVOptions { return KVOptions{MemtableBytes: 64 << 20} }

// kvRecordBytes is the on-WAL size of one put (key + value + header).
func kvRecordBytes(o KVOptions) int {
	if o.KeySize == 0 {
		o.KeySize = 16
	}
	if o.ValueSize == 0 {
		o.ValueSize = 1024
	}
	return o.KeySize + o.ValueSize + 16
}

// assertWholeRecords fails if any durable WAL file of the store tears a
// record: under ordered writes a journal commit is all-or-nothing, so
// every recovered WAL size must divide evenly by the record size.
func assertWholeRecords(t *testing.T, p *sim.Proc, fsys *fs.FS, rec int) {
	t.Helper()
	names, err := fsys.List(p, "db")
	if err != nil {
		t.Fatalf("list db: %v", err)
	}
	for _, name := range names {
		if len(name) < 3 || name[:3] != "WAL" {
			continue
		}
		f, err := fsys.Open(p, "db/"+name)
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		if f.Size()%uint64(rec) != 0 {
			t.Errorf("torn record: db/%s holds %d bytes, not a multiple of %d", name, f.Size(), rec)
		}
	}
}

// divergentBlocks compares the durable content of a replica member
// against a peer of its set, returning the count of mismatched blocks
// (0 = byte-identical after resync).
func divergentBlocks(c *Cluster, member int) int {
	st := c.Stack()
	set := st.SetOf(member)
	peer := -1
	for _, m := range st.SetMembers(set) {
		if m != member {
			peer = m
			break
		}
	}
	if peer < 0 {
		return 0
	}
	ps, ms := st.Target(peer).SSD(0), st.Target(member).SSD(0)
	bad := 0
	for _, lba := range ps.DurableLBAs() {
		prec, _ := ps.Durable(lba)
		mrec, ok := ms.Durable(lba)
		if !ok || mrec.Stamp != prec.Stamp {
			bad++
		}
	}
	for _, lba := range ms.DurableLBAs() {
		if _, ok := ps.Durable(lba); !ok {
			bad++
		}
	}
	return bad
}

// TestServeCrashReplicaMember: two tenants serve fillsync puts from
// their own initiators over 3-way replica sets; one member of set 0 is
// power-cut mid-put. At majority quorum no stream stalls — both tenants
// keep acknowledging puts — and after the background resync the member
// is byte-identical to its peers, every WAL holds whole records only,
// and the order audit is clean.
func TestServeCrashReplicaMember(t *testing.T) {
	c := NewCluster(Options{
		Seed:       21,
		Initiators: 2,
		Streams:    4,
		Targets: []TargetSpec{
			{SSDs: []DeviceClass{Optane}}, {SSDs: []DeviceClass{Optane}},
			{SSDs: []DeviceClass{Optane}}, {SSDs: []DeviceClass{Optane}},
			{SSDs: []DeviceClass{Optane}}, {SSDs: []DeviceClass{Optane}},
		},
		Replicas: 3, // majority quorum 2: one member down must not stall
	})
	defer c.Close()

	const tenants = 2
	acked := make([]int, tenants)
	ackedAtCut := make([]int, tenants)
	stop := false
	fss := make([]*fs.FS, tenants)
	for ten := 0; ten < tenants; ten++ {
		ten := ten
		c.GoOn(ten, func(ctx *Ctx) {
			p := ctx.Proc()
			fsys := ctx.FS(serveFSOpts(ten))
			fss[ten] = fsys
			db, err := ctx.KV(fsys, serveKVOpts())
			if err != nil {
				t.Errorf("tenant %d open: %v", ten, err)
				return
			}
			for i := 0; !stop && ctx.Alive(); i++ {
				key := fmt.Sprintf("t%d-%08d", ten, i)
				if err := db.Put(p, i%2, key, db.Options().ValueSize); err != nil {
					t.Errorf("tenant %d put: %v", ten, err)
					return
				}
				acked[ten]++
			}
		})
	}
	cutAt := 200 * sim.Microsecond
	c.Engine().At(cutAt, func() {
		c.Fault(TargetScope(1)) // a member of set 0, mid-put
		copy(ackedAtCut, acked)
	})
	c.RunFor(cutAt + 2*sim.Millisecond)
	stop = true
	c.Run()

	for ten := 0; ten < tenants; ten++ {
		if ackedAtCut[ten] == 0 {
			t.Fatalf("tenant %d: no put acknowledged before the cut", ten)
		}
		if acked[ten] <= ackedAtCut[ten] {
			t.Errorf("tenant %d stalled after member cut: %d acked at cut, %d at end",
				ten, ackedAtCut[ten], acked[ten])
		}
	}
	if c.InSync(1) {
		t.Fatal("cut member still marked in sync")
	}

	// Background resync rejoins the member; then audit everything.
	c.Go(func(ctx *Ctx) {
		ctx.Recover(TargetScope(1))
		p := ctx.Proc()
		for ten := 0; ten < tenants; ten++ {
			n, err := ctx.KVRecoverCount(fss[ten], serveKVOpts())
			if err != nil {
				t.Errorf("tenant %d recover count: %v", ten, err)
				continue
			}
			if n < acked[ten] {
				t.Errorf("tenant %d: %d acked puts, only %d records durable", ten, acked[ten], n)
			}
			if slack := n - acked[ten]; slack > 2 {
				t.Errorf("tenant %d: %d durable records vs %d acked — prefix not tight (max 1 in-flight per thread)",
					ten, n, acked[ten])
			}
			assertWholeRecords(t, p, fss[ten], kvRecordBytes(serveKVOpts()))
		}
	})
	c.Run()
	if !c.InSync(1) {
		t.Error("member not in sync after resync")
	}
	if d := divergentBlocks(c, 1); d != 0 {
		t.Errorf("member diverges from peer on %d blocks after resync", d)
	}
	if v := c.OrderAudit(); v != 0 {
		t.Errorf("order audit: %d violations", v)
	}
}

// TestServeCrashInitiator: tenant 1's initiator server is power-cut
// mid-put while tenant 0 keeps serving. After InitiatorScope recovery
// the tenant's volume remounts on the recovered server with no torn
// record, a monotonic WAL prefix (every acked put durable, at most the
// in-flight puts beyond), and a clean order audit; tenant 0 never
// noticed.
func TestServeCrashInitiator(t *testing.T) {
	c := NewCluster(Options{
		Seed:       22,
		Initiators: 2,
		Streams:    4,
		Targets: []TargetSpec{
			{SSDs: []DeviceClass{Optane}}, {SSDs: []DeviceClass{Optane}},
			{SSDs: []DeviceClass{Optane}}, {SSDs: []DeviceClass{Optane}},
		},
		Replicas: 2,
	})
	defer c.Close()

	const tenants = 2
	acked := make([]int, tenants)
	ackedAtCut := make([]int, tenants)
	attempted := make([]int, tenants)
	threads := 2
	stop := false
	for ten := 0; ten < tenants; ten++ {
		ten := ten
		c.GoOn(ten, func(ctx *Ctx) {
			p := ctx.Proc()
			fsys := ctx.FS(serveFSOpts(ten))
			db, err := ctx.KV(fsys, serveKVOpts())
			if err != nil {
				t.Errorf("tenant %d open: %v", ten, err)
				return
			}
			for i := 0; !stop && ctx.Alive(); i++ {
				key := fmt.Sprintf("t%d-%08d", ten, i)
				attempted[ten]++
				if err := db.Put(p, i%threads, key, db.Options().ValueSize); err != nil {
					return
				}
				acked[ten]++
			}
		})
	}
	cutAt := 200 * sim.Microsecond
	c.Engine().At(cutAt, func() {
		c.Fault(InitiatorScope(1)) // tenant 1's server dies mid-put
		copy(ackedAtCut, acked)
	})
	c.RunFor(cutAt + 2*sim.Millisecond)
	stop = true
	c.Run()

	if ackedAtCut[1] == 0 {
		t.Fatal("tenant 1: no put acknowledged before the cut")
	}
	if acked[0] <= ackedAtCut[0] {
		t.Errorf("tenant 0 stalled by tenant 1's initiator cut: %d at cut, %d at end",
			ackedAtCut[0], acked[0])
	}
	if acked[1] != ackedAtCut[1] {
		t.Errorf("tenant 1 acked %d puts after its server died", acked[1]-ackedAtCut[1])
	}

	// Recover the initiator, remount tenant 1's volume on it, audit.
	c.GoOn(1, func(ctx *Ctx) {
		rep := ctx.Recover(InitiatorScope(1))
		if rep == nil {
			t.Fatal("nil recovery report")
		}
		p := ctx.Proc()
		fs2, rst := ctx.RemountFS(serveFSOpts(1))
		if rst.Committed == 0 {
			t.Error("remount replayed no journal transactions")
		}
		n, err := ctx.KVRecoverCount(fs2, serveKVOpts())
		if err != nil {
			t.Fatalf("recover count: %v", err)
		}
		// Monotonic prefix: every acknowledged put is durable, and at
		// most the puts in flight at the cut (one per thread) beyond.
		if n < acked[1] {
			t.Errorf("lost acked puts: %d acked, %d durable", acked[1], n)
		}
		if n > acked[1]+threads {
			t.Errorf("durable records %d exceed acked %d + %d in-flight", n, acked[1], threads)
		}
		assertWholeRecords(t, p, fs2, kvRecordBytes(serveKVOpts()))
	})
	c.Run()
	if v := c.OrderAudit(); v != 0 {
		t.Errorf("order audit: %d violations", v)
	}
}
