package rio

import (
	"fmt"
	"testing"

	"repro/internal/fs"
	"repro/internal/kv"
	"repro/internal/sim"
)

// Cached-read crash tests: the serve crash scenarios re-run with the
// full read path on — block cache, read-ahead, negative lookups — which
// adds two obligations on top of the write-side invariants. First, the
// cache audit must find zero stale entries after every fault and
// recovery: no hit may ever serve a rolled-back block or a dead
// incarnation's write. Second, reads must stay correct end to end — a
// Get of an acknowledged key is always present, a Get of a never-written
// key is always absent, across member cuts, initiator cuts and
// unreplicated target cuts.

// readCrashOpts sizes the read path so the crash workload actually
// exercises it: the cache is smaller than the combined journal + WAL +
// scan traffic, so misses, evictions and refills all occur under the
// crash schedule.
func readCrashOpts() ReadOptions {
	return ReadOptions{CacheBlocks: 1024, ReadAhead: 8, NegativeLookup: true}
}

const readCrashScanBlocks = 64

// readCrashTenant runs the mixed load of the cached crash tests on one
// tenant: fillsync puts, and every 4th iteration a read-back Get of an
// earlier acked key (must be present), a probe of a never-written key
// (must be absent), and one block of an ascending file scan through the
// block cache. It returns when the tenant's initiator dies or a put
// fails (dead target).
func readCrashTenant(t *testing.T, ctx *Ctx, ten int, stop *bool,
	acked, badGet []int, dbs []*kv.DB, fss []*fs.FS) {
	p := ctx.Proc()
	fsys := ctx.FS(serveFSOpts(ten))
	if fss != nil {
		fss[ten] = fsys
	}
	db, err := ctx.KV(fsys, serveKVOpts())
	if err != nil {
		t.Errorf("tenant %d open: %v", ten, err)
		return
	}
	if dbs != nil {
		dbs[ten] = db
	}
	scan, err := fsys.Create(p, "scan.dat")
	if err != nil {
		t.Errorf("tenant %d scan file: %v", ten, err)
		return
	}
	for b := 0; b < readCrashScanBlocks; b += 16 {
		fsys.Append(p, scan, 16*fs.BlockSize)
	}
	fsys.Fsync(p, scan, 0)
	off := uint64(0)
	for i := 0; !*stop && ctx.Alive(); i++ {
		key := fmt.Sprintf("t%d-%08d", ten, i)
		if err := db.Put(p, i%2, key, db.Options().ValueSize); err != nil {
			return
		}
		acked[ten]++
		if i%4 == 3 {
			if !db.Get(p, fmt.Sprintf("t%d-%08d", ten, i/2)) {
				badGet[ten]++
			}
			if db.Get(p, fmt.Sprintf("absent-t%d-%08d", ten, i)) {
				badGet[ten]++
			}
			fsys.Read(p, scan, off*fs.BlockSize, fs.BlockSize)
			off = (off + 1) % readCrashScanBlocks
		}
	}
}

// TestServeCrashMemberCachedReads: the replica-member cut under cached
// reads. One member of set 0 dies mid-load; both tenants keep serving
// at quorum, every read-back stays correct throughout the degraded
// window and the background resync, and the cache audit is clean at
// every step — the epoch fence may never let a hit outlive the data it
// cached.
func TestServeCrashMemberCachedReads(t *testing.T) {
	c := NewCluster(Options{
		Seed:       31,
		Initiators: 2,
		Streams:    4,
		Targets: []TargetSpec{
			{SSDs: []DeviceClass{Optane}}, {SSDs: []DeviceClass{Optane}},
			{SSDs: []DeviceClass{Optane}}, {SSDs: []DeviceClass{Optane}},
			{SSDs: []DeviceClass{Optane}}, {SSDs: []DeviceClass{Optane}},
		},
		Replicas: 3,
		Read:     readCrashOpts(),
	})
	defer c.Close()

	const tenants = 2
	acked := make([]int, tenants)
	ackedAtCut := make([]int, tenants)
	badGet := make([]int, tenants)
	dbs := make([]*kv.DB, tenants)
	stop := false
	for ten := 0; ten < tenants; ten++ {
		ten := ten
		c.GoOn(ten, func(ctx *Ctx) {
			readCrashTenant(t, ctx, ten, &stop, acked, badGet, dbs, nil)
		})
	}
	cutAt := 800 * sim.Microsecond
	c.Engine().At(cutAt, func() {
		c.Fault(TargetScope(1))
		copy(ackedAtCut, acked)
	})
	c.RunFor(cutAt + 2*sim.Millisecond)
	stop = true
	c.Run()

	for ten := 0; ten < tenants; ten++ {
		if ackedAtCut[ten] == 0 {
			t.Fatalf("tenant %d: no put acknowledged before the cut", ten)
		}
		if acked[ten] <= ackedAtCut[ten] {
			t.Errorf("tenant %d stalled after member cut: %d at cut, %d at end",
				ten, ackedAtCut[ten], acked[ten])
		}
		if badGet[ten] != 0 {
			t.Errorf("tenant %d: %d wrong read-backs under the degraded window", ten, badGet[ten])
		}
	}
	// Degraded but not recovered yet: no cache entry may be stale.
	if bad := c.CacheAudit(); bad != 0 {
		t.Fatalf("cache audit while member down: %d stale entries", bad)
	}

	c.Go(func(ctx *Ctx) { ctx.Recover(TargetScope(1)) })
	c.Run()
	if !c.InSync(1) {
		t.Error("member not in sync after resync")
	}
	if d := divergentBlocks(c, 1); d != 0 {
		t.Errorf("member diverges from peer on %d blocks after resync", d)
	}
	if bad := c.CacheAudit(); bad != 0 {
		t.Errorf("cache audit after resync: %d stale entries", bad)
	}
	if v := c.OrderAudit(); v != 0 {
		t.Errorf("order audit: %d violations", v)
	}
	// The read path was actually on: cache hits occurred and at least
	// one absent probe was answered by the bloom filter alone.
	if st := c.CacheStatsAll(); st.Hits == 0 {
		t.Errorf("cached crash run recorded no cache hits: %+v", st)
	}
	neg := int64(0)
	for _, db := range dbs {
		if db != nil {
			neg += db.Stats().NegativeHits
		}
	}
	if neg == 0 {
		t.Error("no get was answered by the negative-lookup filter")
	}
}

// TestServeCrashInitiatorCachedReads: tenant 1's initiator dies mid-load
// with the read path on. Its block cache dies with the incarnation —
// after InitiatorScope recovery and remount, KVReopen must come back
// with a SATURATED bloom filter (MayContain true for every acked
// pre-crash key: the superset invariant), every acked put durable, no
// torn record, and clean cache and order audits.
func TestServeCrashInitiatorCachedReads(t *testing.T) {
	c := NewCluster(Options{
		Seed:       32,
		Initiators: 2,
		Streams:    4,
		Targets: []TargetSpec{
			{SSDs: []DeviceClass{Optane}}, {SSDs: []DeviceClass{Optane}},
			{SSDs: []DeviceClass{Optane}}, {SSDs: []DeviceClass{Optane}},
		},
		Replicas: 2,
		Read:     readCrashOpts(),
	})
	defer c.Close()

	const tenants = 2
	acked := make([]int, tenants)
	ackedAtCut := make([]int, tenants)
	badGet := make([]int, tenants)
	stop := false
	for ten := 0; ten < tenants; ten++ {
		ten := ten
		c.GoOn(ten, func(ctx *Ctx) {
			readCrashTenant(t, ctx, ten, &stop, acked, badGet, nil, nil)
		})
	}
	cutAt := 800 * sim.Microsecond
	c.Engine().At(cutAt, func() {
		c.Fault(InitiatorScope(1))
		copy(ackedAtCut, acked)
	})
	c.RunFor(cutAt + 2*sim.Millisecond)
	stop = true
	c.Run()

	if ackedAtCut[1] == 0 {
		t.Fatal("tenant 1: no put acknowledged before the cut")
	}
	if acked[0] <= ackedAtCut[0] {
		t.Errorf("tenant 0 stalled by tenant 1's initiator cut: %d at cut, %d at end",
			ackedAtCut[0], acked[0])
	}
	if acked[1] != ackedAtCut[1] {
		t.Errorf("tenant 1 acked %d puts after its server died", acked[1]-ackedAtCut[1])
	}
	if badGet[0] != 0 || badGet[1] != 0 {
		t.Errorf("wrong read-backs: tenant 0 %d, tenant 1 %d", badGet[0], badGet[1])
	}

	c.GoOn(1, func(ctx *Ctx) {
		if rep := ctx.Recover(InitiatorScope(1)); rep == nil {
			t.Fatal("nil recovery report")
		}
		p := ctx.Proc()
		fs2, rst := ctx.RemountFS(serveFSOpts(1))
		if rst.Committed == 0 {
			t.Error("remount replayed no journal transactions")
		}
		db2, err := ctx.KVReopen(fs2, serveKVOpts())
		if err != nil {
			t.Fatalf("kv reopen: %v", err)
		}
		// Superset invariant: the reopened filter answers "maybe" for
		// every key acked before the crash — a false "absent" here is
		// data loss to the application.
		missed := 0
		for i := 0; i < acked[1]; i++ {
			if !db2.MayContain(fmt.Sprintf("t1-%08d", i)) {
				missed++
			}
		}
		if missed != 0 {
			t.Errorf("reopened filter denies %d of %d acked keys (superset broken)", missed, acked[1])
		}
		n, err := ctx.KVRecoverCount(fs2, serveKVOpts())
		if err != nil {
			t.Fatalf("recover count: %v", err)
		}
		if n < acked[1] {
			t.Errorf("lost acked puts: %d acked, %d durable", acked[1], n)
		}
		assertWholeRecords(t, p, fs2, kvRecordBytes(serveKVOpts()))
		// The reopened store serves fresh traffic.
		if err := db2.Put(p, 0, "post-crash", db2.Options().ValueSize); err != nil {
			t.Fatalf("post-crash put: %v", err)
		}
		if !db2.Get(p, "post-crash") {
			t.Error("post-crash put not readable")
		}
	})
	c.Run()
	if bad := c.CacheAudit(); bad != 0 {
		t.Errorf("cache audit after initiator recovery: %d stale entries", bad)
	}
	if v := c.OrderAudit(); v != 0 {
		t.Errorf("order audit: %d violations", v)
	}
}

// TestServeCrashTargetCachedReads: an UNREPLICATED target dies mid-load
// with the read path on. Recovery rolls its media back to the durable
// prefix, so every cached block beyond the prefix is gone from the
// device — the epoch fence must have dropped those entries (cache audit
// clean), the remounted store holds every acked put, and the reopened
// bloom filter is the saturated superset of the pre-crash keys.
func TestServeCrashTargetCachedReads(t *testing.T) {
	c := NewCluster(Options{
		Seed:       33,
		Initiators: 1,
		Streams:    4,
		Targets: []TargetSpec{
			{SSDs: []DeviceClass{Optane}}, {SSDs: []DeviceClass{Optane}},
		},
		Read: readCrashOpts(),
	})
	defer c.Close()

	acked := make([]int, 1)
	badGet := make([]int, 1)
	stop := false
	c.Go(func(ctx *Ctx) {
		readCrashTenant(t, ctx, 0, &stop, acked, badGet, nil, nil)
	})
	cutAt := 800 * sim.Microsecond
	ackedAtCut := 0
	c.Engine().At(cutAt, func() {
		c.Fault(TargetScope(1)) // unreplicated: half the stripes go dark
		ackedAtCut = acked[0]
	})
	c.RunFor(cutAt + sim.Millisecond)
	stop = true
	c.Run()

	if ackedAtCut == 0 {
		t.Fatal("no put acknowledged before the cut")
	}
	if badGet[0] != 0 {
		t.Errorf("%d wrong read-backs around the target cut", badGet[0])
	}
	// The dead target's blocks must already be fenced out of the cache.
	if bad := c.CacheAudit(); bad != 0 {
		t.Fatalf("cache audit with target down: %d stale entries", bad)
	}

	c.Go(func(ctx *Ctx) {
		if rep := ctx.Recover(TargetScope(1)); rep == nil {
			t.Fatal("nil recovery report")
		}
		p := ctx.Proc()
		fs2, _ := ctx.RemountFS(serveFSOpts(0))
		db2, err := ctx.KVReopen(fs2, serveKVOpts())
		if err != nil {
			t.Fatalf("kv reopen: %v", err)
		}
		missed := 0
		for i := 0; i < acked[0]; i++ {
			if !db2.MayContain(fmt.Sprintf("t0-%08d", i)) {
				missed++
			}
		}
		if missed != 0 {
			t.Errorf("reopened filter denies %d of %d acked keys (superset broken)", missed, acked[0])
		}
		n, err := ctx.KVRecoverCount(fs2, serveKVOpts())
		if err != nil {
			t.Fatalf("recover count: %v", err)
		}
		if n < acked[0] {
			t.Errorf("lost acked puts: %d acked, %d durable", acked[0], n)
		}
		assertWholeRecords(t, p, fs2, kvRecordBytes(serveKVOpts()))
	})
	c.Run()
	if bad := c.CacheAudit(); bad != 0 {
		t.Errorf("cache audit after target recovery: %d stale entries", bad)
	}
	if v := c.OrderAudit(); v != 0 {
		t.Errorf("order audit: %d violations", v)
	}
}
