package rio

import (
	"testing"

	"repro/internal/sim"
)

func TestQuickstartFlow(t *testing.T) {
	c := NewCluster(Options{Seed: 1})
	defer c.Close()
	delivered := []string{}
	c.Go(func(ctx *Ctx) {
		s := ctx.Stream(0)
		s.Write(10, 2)                   // journal description + metadata
		jc := s.Close(12, 1)             // group boundary
		h := ctx.Stream(0).Commit(13, 1) // commit record with FLUSH
		h.Wait()
		if !jc.Done() {
			t.Error("earlier group must be delivered before the commit")
		}
		delivered = append(delivered, "done")
	})
	c.Run()
	if len(delivered) != 1 {
		t.Fatal("app thread did not finish")
	}
}

func TestAttrExposure(t *testing.T) {
	c := NewCluster(Options{Seed: 2})
	defer c.Close()
	c.Go(func(ctx *Ctx) {
		h1 := ctx.Stream(3).Close(0, 1)
		h2 := ctx.Stream(3).Commit(1, 1)
		h2.Wait()
		if h1.Attr().SeqStart != 1 || h2.Attr().SeqStart != 2 {
			t.Errorf("seqs = %d, %d", h1.Attr().SeqStart, h2.Attr().SeqStart)
		}
		if h1.Attr().Stream != 3 {
			t.Errorf("stream = %d", h1.Attr().Stream)
		}
		if !h2.Attr().Flush {
			t.Error("commit must carry the flush barrier")
		}
	})
	c.Run()
}

func TestOrderlessClusterHasNoAttrs(t *testing.T) {
	c := NewCluster(Options{Ordering: Orderless, Seed: 3})
	defer c.Close()
	c.Go(func(ctx *Ctx) {
		h := ctx.WriteOrderless(5, 1)
		h.Wait()
		if h.Attr().SeqStart != 0 {
			t.Error("orderless write should carry no attribute")
		}
		recs := ctx.Read(5, 1)
		if len(recs) != 1 {
			t.Errorf("read returned %d recs", len(recs))
		}
	})
	c.Run()
}

func TestPowerCutAndRecover(t *testing.T) {
	c := NewCluster(Options{Seed: 4, History: true})
	defer c.Close()
	c.Go(func(ctx *Ctx) {
		s := ctx.Stream(0)
		h := s.Commit(0, 1)
		h.Wait()
		s.Close(1, 1) // in flight at the cut
		c.Fault(ClusterScope())
	})
	c.Run()
	var prefix uint64
	c.Go(func(ctx *Ctx) {
		rep := ctx.Recover()
		prefix = rep.DurablePrefix(0)
		if rep.Timing.OrderRebuild == 0 {
			t.Error("order rebuild should take time")
		}
	})
	c.Run()
	if prefix < 1 {
		t.Fatalf("durable prefix = %d, want >= 1 (group 1 was committed)", prefix)
	}
}

func TestTargetCrashRecover(t *testing.T) {
	c := NewCluster(Options{
		Seed:    5,
		Targets: []TargetSpec{{SSDs: []DeviceClass{Optane}}, {SSDs: []DeviceClass{Optane}}},
	})
	defer c.Close()
	var handles []*Handle
	c.Go(func(ctx *Ctx) {
		s := ctx.Stream(0)
		for i := 0; i < 16; i++ {
			handles = append(handles, s.Close(uint64(i), 1))
			ctx.Sleep(2 * sim.Microsecond)
		}
	})
	c.Engine().At(20*sim.Microsecond, func() { c.Fault(TargetScope(1)) })
	c.RunFor(300 * sim.Microsecond)
	c.Go(func(ctx *Ctx) {
		rep := ctx.Recover(TargetScope(1))
		if rep.Timing.Replayed == 0 {
			t.Error("expected replayed requests")
		}
	})
	c.Run()
	for i, h := range handles {
		if !h.Done() {
			t.Fatalf("request %d lost after target recovery", i)
		}
	}
}

func TestFSOnPublicAPI(t *testing.T) {
	c := NewCluster(Options{Seed: 6})
	defer c.Close()
	ok := false
	c.Go(func(ctx *Ctx) {
		fsys := ctx.FS(FSOptions{Design: RioFSFS, Journals: 4})
		f, err := fsys.Create(ctx.Proc(), "hello")
		if err != nil {
			t.Error(err)
			return
		}
		if err := fsys.Append(ctx.Proc(), f, 4096); err != nil {
			t.Error(err)
			return
		}
		fsys.Fsync(ctx.Proc(), f, 0)
		ok = true
	})
	c.Run()
	if !ok {
		t.Fatal("fs flow failed")
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := NewCluster(Options{})
	defer c.Close()
	if c.Stack().Config().Streams != 24 {
		t.Fatalf("default streams = %d", c.Stack().Config().Streams)
	}
	if got := c.Stack().Config().Mode.String(); got != "rio" {
		t.Fatalf("default mode = %s", got)
	}
	off := false
	c2 := NewCluster(Options{Merging: &off})
	defer c2.Close()
	if c2.Stack().Config().MergeEnabled {
		t.Fatal("merging override ignored")
	}
}
