// Package rio is the public API of the Rio reproduction: an
// order-preserving networked block device (and file system) in the spirit
// of the paper's programming model (§4.6) — rio_setup, rio_submit,
// rio_wait — running on a deterministic simulation of the full NVMe-oF
// stack (initiator, RDMA fabric, targets, SSDs with PMR).
//
// A minimal session:
//
//	c := rio.NewCluster(rio.Options{})            // rio_setup
//	c.Go(func(ctx *rio.Ctx) {
//	    s := ctx.Stream(0)
//	    s.Write(10, 2)                            // rio_submit (group open)
//	    h := s.Commit(12, 1)                      // boundary + FLUSH
//	    h.Wait()                                  // rio_wait
//	})
//	c.Run()
//
// Crash behavior is first-class: PowerCut drops volatile state everywhere,
// Recover runs the paper's §4.4 algorithm, and the Report's durable prefix
// tells you exactly which groups survived.
package rio

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/kv"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stack"
	"repro/internal/trace"
)

// DeviceClass selects an SSD personality.
type DeviceClass int

const (
	// Flash is a consumer NVMe SSD with a volatile write cache and an
	// expensive device-wide FLUSH (no power-loss protection).
	Flash DeviceClass = iota
	// Optane is a PLP low-latency SSD: writes are durable on completion.
	Optane
)

// Ordering selects the storage-order machinery of the stack.
type Ordering int

const (
	// Rio is the paper's design (default): asynchronous ordered writes
	// with ordering attributes, in-order submission/completion and PMR
	// recovery.
	Rio Ordering = iota
	// Horae is the baseline with a synchronous control path.
	Horae
	// LinuxOrdered is classic synchronous transfer + FLUSH.
	LinuxOrdered
	// Orderless gives no ordering guarantee (upper bound).
	Orderless
)

// TargetSpec describes one target server.
type TargetSpec struct {
	SSDs []DeviceClass
}

// Options configures a cluster (rio_setup). Zero values select one
// initiator, one Optane target server, 24 streams, and the Rio ordering
// mode.
type Options struct {
	Ordering   Ordering
	Targets    []TargetSpec
	Initiators int   // initiator servers sharing the target fleet (0 = 1)
	Streams    int   // streams per initiator
	Merging    *bool // nil = enabled
	Seed       int64
	History    bool // retain media write history (needed by VerifyPrefix)

	// Replicas groups consecutive targets into replica sets of this size
	// (Rio ordering only; len(Targets) must divide evenly): every ordered
	// write fans out to all in-sync members with per-replica ordering
	// chains, completions deliver at WriteQuorum, reads come from any
	// in-sync member, and a power-cut member degrades its set instead of
	// stalling streams (RecoverTarget then runs a background resync).
	// 0 or 1 = no replication.
	Replicas int
	// WriteQuorum: 0 = majority of Replicas; Replicas = full-set
	// durability (writes stall while the set is degraded).
	WriteQuorum int
	// Relay routes replicated writes over target-to-target links: the
	// initiator posts ONE capsule to the set's head member, which relays
	// follower copies and aggregates follower acks into a single quorum
	// CQE — cutting initiator egress and reap work from R× to ~1× per
	// write. Requires Replicas > 1. Off (false) keeps the direct fan-out
	// path byte-identical to earlier releases; a head power cut degrades
	// the set back to direct fan-out mid-flight with no lost or
	// duplicated completions.
	Relay bool

	// Read configures the initiator-side read path (block cache,
	// read-ahead, KV negative lookups). The zero value turns every read
	// feature off, leaving the read path identical to earlier releases.
	Read ReadOptions

	// Trace configures stage-level request tracing. The zero value turns
	// tracing off; a traced run of the same seed is event-identical to an
	// untraced one (tracing records host memory only).
	Trace TraceOptions
}

// TraceOptions configures stage-level request tracing: 1-in-SampleEvery
// submitted writes record a milestone timestamp at every layer of the
// data plane (submit, plug, dispatch, wire, target, ssd, completion,
// reap, ordered delivery) plus the wait attribution (gate, TX stall,
// gate park, PMR, device saturation, CQE hold, replica quorum).
type TraceOptions struct {
	// SampleEvery traces 1 in N submitted writes per shard (0 = off).
	SampleEvery int
	// Keep bounds the ring of retained per-span records for offline
	// analysis (Chrome trace export, p99 stage budgets). 0 keeps only
	// aggregates.
	Keep int
}

// ReadOptions configures the initiator-side read path. Every field
// follows the zero-is-off convention, so existing Options literals are
// unaffected.
type ReadOptions struct {
	// CacheBlocks bounds the per-initiator block cache (4 KiB blocks,
	// CLOCK replacement). 0 disables caching: reads always cross the
	// fabric, exactly as before.
	CacheBlocks int
	// ReadAhead is the default prefetch depth (blocks) once an
	// ascending-LBA stream is detected. 0 disables read-ahead; it is
	// also inert while CacheBlocks is 0 (prefetched blocks need
	// somewhere to land). File systems can override it per mount with
	// FSOptions.ReadAhead.
	ReadAhead int
	// NegativeLookup turns on the per-store bloom filter for every KV
	// store opened through Ctx.KV, answering definitely-absent Gets at
	// the initiator with zero fabric traffic. Individual stores can
	// still opt in via KVOptions.NegativeLookup.
	NegativeLookup bool
}

// Cluster is a running simulated deployment.
type Cluster struct {
	eng   *sim.Engine
	inner *stack.Cluster
	read  ReadOptions
}

// NewCluster builds and starts the stack.
func NewCluster(o Options) *Cluster {
	if len(o.Targets) == 0 {
		o.Targets = []TargetSpec{{SSDs: []DeviceClass{Optane}}}
	}
	if o.Streams == 0 {
		o.Streams = 24
	}
	var mode stack.Mode
	switch o.Ordering {
	case Horae:
		mode = stack.ModeHorae
	case LinuxOrdered:
		mode = stack.ModeLinux
	case Orderless:
		mode = stack.ModeOrderless
	default:
		mode = stack.ModeRio
	}
	var targets []stack.TargetConfig
	for _, t := range o.Targets {
		var tc stack.TargetConfig
		for _, d := range t.SSDs {
			if d == Flash {
				tc.SSDs = append(tc.SSDs, ssd.FlashConfig())
			} else {
				tc.SSDs = append(tc.SSDs, ssd.OptaneConfig())
			}
		}
		targets = append(targets, tc)
	}
	cfg := stack.DefaultConfig(mode, targets...)
	cfg.Initiators = o.Initiators
	cfg.Replicas = o.Replicas
	cfg.WriteQuorum = o.WriteQuorum
	cfg.ReplRelay = o.Relay
	cfg.Streams = o.Streams
	cfg.QPs = o.Streams
	cfg.Fabric.NumQPs = o.Streams
	if o.Merging != nil {
		cfg.MergeEnabled = *o.Merging
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	cfg.KeepHistory = o.History
	cfg.CacheBlocks = o.Read.CacheBlocks
	cfg.ReadAhead = o.Read.ReadAhead
	cfg.Trace = trace.Config{SampleEvery: o.Trace.SampleEvery, Keep: o.Trace.Keep}
	eng := sim.New(cfg.Seed)
	return &Cluster{eng: eng, inner: stack.New(eng, cfg), read: o.Read}
}

// Ctx is the execution context of simulated application code, bound to
// one initiator server: every stream, write and wait issued through it
// runs in that initiator's ordering domain.
type Ctx struct {
	p  *sim.Proc
	c  *Cluster
	in *stack.Initiator
}

// Go spawns fn as a simulated application thread on initiator 0. Call
// Run to execute.
func (c *Cluster) Go(fn func(ctx *Ctx)) { c.GoOn(0, fn) }

// GoOn spawns fn as a simulated application thread on initiator init —
// the handle a multi-initiator deployment hands its per-server
// application code (streams with the same id on different initiators are
// independent ordering domains).
func (c *Cluster) GoOn(init int, fn func(ctx *Ctx)) {
	in := c.inner.Init(init)
	c.eng.Go("app", func(p *sim.Proc) { fn(&Ctx{p: p, c: c, in: in}) })
}

// Run executes the simulation until it quiesces.
func (c *Cluster) Run() { c.eng.Run() }

// RunFor advances simulated time by d nanoseconds.
func (c *Cluster) RunFor(d sim.Time) { c.eng.RunFor(d) }

// Now returns the simulated clock.
func (c *Cluster) Now() sim.Time { return c.eng.Now() }

// Close releases simulation resources (parked goroutines).
func (c *Cluster) Close() { c.eng.Shutdown() }

// Stack exposes the underlying cluster for advanced use (benchmarks).
func (c *Cluster) Stack() *stack.Cluster { return c.inner }

// Initiators returns the number of initiator servers.
func (c *Cluster) Initiators() int { return c.inner.Initiators() }

// Engine exposes the simulation engine (for scheduling crash injection).
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Sleep pauses the calling simulated thread.
func (ctx *Ctx) Sleep(d sim.Time) { ctx.p.Sleep(d) }

// Proc exposes the simulated thread, needed when calling lower-level APIs
// (file system, workload drivers) from application code.
func (ctx *Ctx) Proc() *sim.Proc { return ctx.p }

// Initiator returns the id of the initiator this context is bound to.
func (ctx *Ctx) Initiator() int { return ctx.in.ID() }

// Alive reports whether this context's initiator server is powered
// (application loops should stop submitting once their server dies).
func (ctx *Ctx) Alive() bool { return ctx.in.Alive() }

// Now returns the simulated clock.
func (ctx *Ctx) Now() sim.Time { return ctx.p.Now() }

// Stream returns the ordered-write stream with the given id (§4.5: streams
// are independent ordering domains; use one per thread or transaction
// context).
func (ctx *Ctx) Stream(id int) *Stream {
	return &Stream{ctx: ctx, id: id}
}

// Stream issues ordered writes whose storage order follows submission
// order (rio_submit).
type Stream struct {
	ctx *Ctx
	id  int
}

// Handle tracks one submitted request.
type Handle struct {
	ctx *Ctx
	req *blockdev.Request
}

// Wait blocks until the completion is delivered in storage order
// (rio_wait).
func (h *Handle) Wait() { h.ctx.in.Wait(h.ctx.p, h.req) }

// Done reports whether the completion has been delivered.
func (h *Handle) Done() bool { return h.req.Done.Fired() }

// Attr returns the ordering attribute assigned by the sequencer (zero
// value for orderless clusters).
func (h *Handle) Attr() core.Attr {
	if h.req.Ticket == nil {
		return core.Attr{}
	}
	return h.req.Ticket.Attr
}

// Write submits an ordered write that stays inside the current group
// (requests within a group may be freely reordered with each other).
func (s *Stream) Write(lba uint64, blocks uint32) *Handle {
	return s.submit(lba, blocks, false, false, false)
}

// Close submits an ordered write that ends the current group (boundary).
func (s *Stream) Close(lba uint64, blocks uint32) *Handle {
	return s.submit(lba, blocks, true, false, false)
}

// Commit submits a boundary write carrying the durability barrier (FLUSH):
// when its Wait returns, the whole group — and every group before it — is
// durable and ordered.
func (s *Stream) Commit(lba uint64, blocks uint32) *Handle {
	return s.submit(lba, blocks, true, true, false)
}

// WriteIPU submits an in-place update (§4.4.2): recovery will not roll it
// back; upper layers handle its consistency.
func (s *Stream) WriteIPU(lba uint64, blocks uint32, boundary bool) *Handle {
	return s.submit(lba, blocks, boundary, false, true)
}

func (s *Stream) submit(lba uint64, blocks uint32, boundary, flush, ipu bool) *Handle {
	req := s.ctx.in.OrderedWrite(s.ctx.p, s.id, lba, blocks, 0, nil, boundary, flush, ipu)
	return &Handle{ctx: s.ctx, req: req}
}

// WriteOrderless submits a write with no ordering guarantee.
func (ctx *Ctx) WriteOrderless(lba uint64, blocks uint32) *Handle {
	req := ctx.in.OrderlessWrite(ctx.p, 0, lba, blocks, 0, nil)
	return &Handle{ctx: ctx, req: req}
}

// Read performs a synchronous read.
func (ctx *Ctx) Read(lba uint64, blocks uint32) []ssd.Rec {
	return ctx.in.Read(ctx.p, lba, blocks)
}

// Flush issues a standalone device FLUSH barrier (block-reuse fallback).
func (ctx *Ctx) Flush() { ctx.in.FlushDevice(ctx.p, 0) }

// CacheStats is a snapshot of one initiator's block-cache counters.
// All zeros when the cache is disabled (ReadOptions.CacheBlocks == 0).
type CacheStats struct {
	Hits          int64 // demand reads served from the cache
	Misses        int64 // demand reads that crossed the fabric
	Inserts       int64 // blocks populated (read completions and writes)
	Evictions     int64 // blocks displaced by CLOCK replacement
	Invalidations int64 // blocks fenced by faults, recovery or resync

	ReadAheadIssued int64 // blocks prefetched
	ReadAheadHits   int64 // prefetched blocks later hit by demand reads
	ReadAheadWasted int64 // prefetched blocks evicted or fenced unused
}

// HitRate returns Hits / (Hits + Misses), or 0 before any read.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

func cacheStatsFrom(rs stack.RCacheStats) CacheStats {
	return CacheStats{
		Hits:            rs.Hits,
		Misses:          rs.Misses,
		Inserts:         rs.Inserts,
		Evictions:       rs.Evictions,
		Invalidations:   rs.Invalidations,
		ReadAheadIssued: rs.ReadAheadIssued,
		ReadAheadHits:   rs.ReadAheadHits,
		ReadAheadWasted: rs.ReadAheadWasted,
	}
}

// CacheStats returns the block-cache counters of one initiator.
func (c *Cluster) CacheStats(init int) CacheStats {
	return cacheStatsFrom(c.inner.ReadCacheStats(init))
}

// CacheStatsAll sums the block-cache counters across every initiator.
func (c *Cluster) CacheStatsAll() CacheStats {
	return cacheStatsFrom(c.inner.ReadCacheStatsAll())
}

// CacheStats returns the block-cache counters of this context's
// initiator.
func (ctx *Ctx) CacheStats() CacheStats {
	return cacheStatsFrom(ctx.in.ReadCacheStats())
}

// TraceStats is the aggregated tracing view: sampled/finished/dropped
// span counts, end-to-end and per-stage latency histograms, and the wait
// attribution. All zeros when tracing is off (TraceOptions.SampleEvery
// == 0). The concrete type is internal/trace.Stats; see its Table method
// for a rendered stage-budget breakdown.
type TraceStats = trace.Stats

// TraceStats returns the cluster-wide tracing aggregates.
func (c *Cluster) TraceStats() TraceStats { return c.inner.TraceStats() }

// TraceSpans returns the retained per-span records (up to
// TraceOptions.Keep, oldest first) for offline analysis — feed them to
// internal/trace.WriteChrome for a chrome://tracing timeline or
// internal/trace.BudgetP99 for a p99 stage budget.
func (c *Cluster) TraceSpans() []trace.SpanRecord {
	if tr := c.inner.Tracer(); tr != nil {
		return tr.Retained()
	}
	return nil
}

// TraceStats returns the cluster-wide tracing aggregates (all zeros when
// tracing is off).
func (ctx *Ctx) TraceStats() TraceStats { return ctx.c.inner.TraceStats() }

// CacheAudit cross-checks every live cached block against the media of
// the replica member a read would be routed to, returning the number of
// stale entries — 0 on a correct cache. Crash tests call it after each
// fault/recovery step: a nonzero count means a hit could serve a
// rolled-back block or a dead incarnation's write.
func (c *Cluster) CacheAudit() int { return c.inner.CacheAudit() }

// Replication introspection: replica sets, membership health, degraded
// epochs and resync progress.

// Replicas returns the configured replica factor (1 = no replication).
func (c *Cluster) Replicas() int { return c.inner.Replicas() }

// ReplicaSets returns the number of replica sets the volume stripes
// over (== target count without replication).
func (c *Cluster) ReplicaSets() int { return c.inner.SetCount() }

// SetOf returns the replica set a target server belongs to.
func (c *Cluster) SetOf(target int) int { return c.inner.SetOf(target) }

// SetMembers returns the target ids of one replica set.
func (c *Cluster) SetMembers(set int) []int { return c.inner.SetMembers(set) }

// InSync reports whether a target is an in-sync member of its replica
// set; a power-cut member stays out of sync until its background resync
// completes.
func (c *Cluster) InSync(target int) bool { return c.inner.InSync(target) }

// SetEpoch returns a replica set's membership epoch: it advances on
// every degrade and every resync-rejoin, and the surviving members
// persist each transition as an epoch mark in their PMR partitions.
func (c *Cluster) SetEpoch(set int) int { return c.inner.SetEpoch(set) }

// ResyncBacklog returns how many missed extents are queued for a
// degraded target's background resync (0 once it has rejoined).
func (c *Cluster) ResyncBacklog(target int) int { return c.inner.ResyncBacklog(target) }

// WriteQuorum returns the effective completion quorum per replica set.
func (c *Cluster) WriteQuorum() int { return c.inner.WriteQuorum() }

// OrderAudit runs the ordering engine's dense-chain audit across every
// target server and returns the total number of violations — 0 on a
// healthy cluster. A nonzero count means an in-order gate holds a parked
// command at or below its frontier: the corruption colliding ordering
// domains would produce.
func (c *Cluster) OrderAudit() int { return c.inner.OrderAudit() }

// Scope names the blast radius of a fault or recovery: the whole
// cluster, one target server, or one initiator server. Build one with
// ClusterScope, TargetScope or InitiatorScope and hand it to
// Cluster.Fault / Ctx.Recover — the single crash surface that replaces
// the per-shape PowerCut*/Recover* method family.
type Scope struct {
	kind scopeKind
	idx  int
}

type scopeKind int

const (
	scopeCluster scopeKind = iota
	scopeTarget
	scopeInitiator
)

// ClusterScope is the whole deployment: every server loses volatile
// state at once (a datacenter power event). Media and PMR survive.
func ClusterScope() Scope { return Scope{kind: scopeCluster} }

// TargetScope is a single target server (and the replica-set member it
// hosts, on a replicated cluster).
func TargetScope(i int) Scope { return Scope{kind: scopeTarget, idx: i} }

// InitiatorScope is a single initiator server; the other initiators'
// ordering domains continue undisturbed.
func InitiatorScope(i int) Scope { return Scope{kind: scopeInitiator, idx: i} }

func (s Scope) String() string {
	switch s.kind {
	case scopeTarget:
		return fmt.Sprintf("target(%d)", s.idx)
	case scopeInitiator:
		return fmt.Sprintf("initiator(%d)", s.idx)
	default:
		return "cluster"
	}
}

// Fault power-cuts the given scope: volatile state inside the scope is
// lost, media and PMR survive. Pair with Ctx.Recover on the same scope.
func (c *Cluster) Fault(s Scope) {
	switch s.kind {
	case scopeTarget:
		c.inner.PowerCutTarget(s.idx)
	case scopeInitiator:
		c.inner.PowerCutInitiator(s.idx)
	default:
		c.inner.PowerCutAll()
	}
}

// PowerCut models a whole-cluster power failure.
//
// Deprecated: use Fault(ClusterScope()).
func (c *Cluster) PowerCut() { c.Fault(ClusterScope()) }

// PowerCutTarget crashes a single target server.
//
// Deprecated: use Fault(TargetScope(i)).
func (c *Cluster) PowerCutTarget(i int) { c.Fault(TargetScope(i)) }

// PowerCutInitiator crashes a single initiator server.
//
// Deprecated: use Fault(InitiatorScope(i)).
func (c *Cluster) PowerCutInitiator(i int) { c.Fault(InitiatorScope(i)) }

// Report is the recovery outcome: per-stream durable prefixes.
type Report struct {
	inner  *core.Report
	Timing stack.RecoveryTiming
}

// DurablePrefix returns the highest group seq of the stream for which all
// preceding groups are durable (the §4.8 prefix), for initiator 0.
func (r *Report) DurablePrefix(stream int) uint64 {
	return r.inner.Prefix(uint16(stream))
}

// DurablePrefixFor returns the durable prefix of one initiator's stream.
func (r *Report) DurablePrefixFor(initiator, stream int) uint64 {
	return r.inner.PrefixFor(uint16(initiator), uint16(stream))
}

// Recover runs the §4.4 recovery algorithm over each given scope, in
// order, and returns the ordering report of the last one. No scope means
// ClusterScope: full recovery after a whole-cluster PowerCut, so legacy
// ctx.Recover() calls keep their meaning. Scope semantics:
//
//   - ClusterScope: every initiator replays its PMR-durable requests and
//     rolls the volume forward to the per-stream durable prefixes.
//   - TargetScope(i): every surviving initiator replays its own
//     in-flight requests against the repaired target (§4.4.1 target
//     recovery); on a replicated cluster this is instead a background
//     resync — the member replays the delta from a peer replica's
//     PMR+media and rejoins its set; no stream stalled and no initiator
//     replays anything.
//   - InitiatorScope(i): the crashed initiator recovers from its own PMR
//     partitions; no other initiator's state is read or rolled back.
func (ctx *Ctx) Recover(scope ...Scope) *Report {
	if len(scope) == 0 {
		scope = []Scope{ClusterScope()}
	}
	var out *Report
	for _, s := range scope {
		var rep *core.Report
		var tm stack.RecoveryTiming
		switch s.kind {
		case scopeTarget:
			rep, tm = ctx.c.inner.RecoverTarget(ctx.p, s.idx)
		case scopeInitiator:
			rep, tm = ctx.c.inner.RecoverInitiator(ctx.p, s.idx)
		default:
			rep, tm = ctx.c.inner.RecoverFull(ctx.p)
		}
		out = &Report{inner: rep, Timing: tm}
	}
	return out
}

// RecoverTarget repairs a single crashed target.
//
// Deprecated: use Recover(TargetScope(i)).
func (ctx *Ctx) RecoverTarget(i int) *Report { return ctx.Recover(TargetScope(i)) }

// RecoverInitiator recovers a single crashed initiator.
//
// Deprecated: use Recover(InitiatorScope(i)).
func (ctx *Ctx) RecoverInitiator(i int) *Report { return ctx.Recover(InitiatorScope(i)) }

// FSDesign selects a file-system journaling design (§4.7).
type FSDesign = fs.Design

// File-system designs.
const (
	Ext4FS    = fs.Ext4
	HoraeFSFS = fs.HoraeFS
	RioFSFS   = fs.RioFS
)

// FSOptions sizes and places a file system (see fs.Options): zero
// fields pick defaults, BaseLBA stacks tenants on a shared volume.
type FSOptions = fs.Options

// KVOptions sizes a key-value store (see kv.Options).
type KVOptions = kv.Options

// FS formats a file system bound to this context's initiator: its
// journal streams, data writes and CPU charges all run in that
// initiator's ordering domain. Zero-valued options give RioFS defaults.
func (ctx *Ctx) FS(opts FSOptions) *fs.FS {
	return fs.Open(ctx.in, opts)
}

// RemountFS mounts an existing file system from durable media after a
// fault — the §4.8 replay: committed journal transactions are applied,
// uncommitted ones vanish atomically. opts must match the options the
// file system was formatted with (including BaseLBA).
func (ctx *Ctx) RemountFS(opts FSOptions) (*fs.FS, fs.RecoverStats) {
	return fs.Remount(ctx.p, ctx.in, opts)
}

// KV opens a RocksDB-style store on fsys. The store inherits the file
// system's initiator binding: WAL fsyncs, flushes, compactions and
// indexing CPU are charged to that server. A cluster built with
// ReadOptions.NegativeLookup turns the bloom filter on for every store
// opened here; KVOptions.NegativeLookup opts in a single store.
func (ctx *Ctx) KV(fsys *fs.FS, opts KVOptions) (*kv.DB, error) {
	if ctx.c.read.NegativeLookup {
		opts.NegativeLookup = true
	}
	return kv.Open(ctx.p, fsys, opts)
}

// KVReopen re-attaches a store to its durable files after a fault (pair
// with RemountFS): flushed SSTs are adopted, a fresh WAL generation is
// started, and — because the exact pre-crash key set is unrecoverable —
// a NegativeLookup filter comes back SATURATED (every key answers
// "maybe", the only available superset) until the next compaction
// rebuilds it exactly.
func (ctx *Ctx) KVReopen(fsys *fs.FS, opts KVOptions) (*kv.DB, error) {
	if ctx.c.read.NegativeLookup {
		opts.NegativeLookup = true
	}
	return kv.Reopen(ctx.p, fsys, opts)
}

// KVRecoverCount scans a remounted file system (RemountFS) and counts
// the KV records that survived the fault — WAL records plus records
// already flushed to SSTs. Crash tests compare it against the puts
// acknowledged before the cut: fillsync durability means none may be
// missing, and WAL sizes divide evenly by the record size (no torn
// record can follow a durable commit under ordered writes).
func (ctx *Ctx) KVRecoverCount(fsys *fs.FS, opts KVOptions) (int, error) {
	return kv.RecoverCount(ctx.p, fsys, opts)
}

// NewFS formats a file system on initiator 0. journals is the per-core
// journal count (ignored for Ext4).
//
// Deprecated: use Ctx.FS, which binds the file system to the calling
// context's initiator and takes full FSOptions.
func (c *Cluster) NewFS(design FSDesign, journals int) *fs.FS {
	return fs.Open(c.inner.Init(0), fs.DefaultOptions(design, journals))
}
