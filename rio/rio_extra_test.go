package rio

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestWriteIPUPath(t *testing.T) {
	c := NewCluster(Options{Seed: 11, History: true})
	defer c.Close()
	c.Go(func(ctx *Ctx) {
		s := ctx.Stream(0)
		h1 := s.Commit(0, 1)
		h1.Wait()
		h2 := s.WriteIPU(0, 1, true) // overwrite the same LBA in place
		if !h2.Attr().IPU {
			t.Error("IPU flag not set on attribute")
		}
		h3 := s.Commit(1, 1)
		h3.Wait()
	})
	c.Run()
	// The IPU entry exists in the PMR with the flag set (until retired).
	entries := core.ScanRegion(c.Stack().Target(0).SSD(0).PMRBytes())
	foundIPU := false
	for _, e := range entries {
		if e.IPU {
			foundIPU = true
		}
	}
	if !foundIPU {
		t.Fatal("no IPU-flagged entry reached the PMR")
	}
}

func TestFlushBarrierAPI(t *testing.T) {
	c := NewCluster(Options{
		Seed:    12,
		Targets: []TargetSpec{{SSDs: []DeviceClass{Flash}}},
	})
	defer c.Close()
	c.Go(func(ctx *Ctx) {
		h := ctx.Stream(0).Close(5, 1)
		h.Wait()
		// Completed into the volatile cache: not durable yet.
		if _, ok := c.Stack().Target(0).SSD(0).Durable(5); ok {
			t.Error("flash write durable before any barrier")
		}
		ctx.Flush() // explicit device barrier (block-reuse fallback, §4.4.2)
		if _, ok := c.Stack().Target(0).SSD(0).Durable(5); !ok {
			t.Error("write not durable after explicit Flush")
		}
	})
	c.Run()
}

func TestClockAndSleep(t *testing.T) {
	c := NewCluster(Options{Seed: 13})
	defer c.Close()
	c.Go(func(ctx *Ctx) {
		t0 := ctx.Now()
		ctx.Sleep(5 * sim.Microsecond)
		if ctx.Now()-t0 != 5*sim.Microsecond {
			t.Errorf("sleep advanced %v", ctx.Now()-t0)
		}
	})
	c.Run()
	if c.Now() < 5*sim.Microsecond {
		t.Errorf("cluster clock = %v", c.Now())
	}
}

func TestStreamsIsolated(t *testing.T) {
	c := NewCluster(Options{Seed: 14, Streams: 4})
	defer c.Close()
	c.Go(func(ctx *Ctx) {
		// Streams are independent ordering domains (§4.5): an open group on
		// stream 0 must not delay stream 1's commit.
		ctx.Stream(0).Write(0, 1) // group stays open (no boundary)
		h := ctx.Stream(1).Commit(100, 1)
		h.Wait() // must complete despite stream 0's open group
		if !h.Done() {
			t.Error("stream 1 blocked by stream 0's open group")
		}
	})
	c.Run()
}
