#!/bin/sh
# lint_deprecated.sh — CI gate against re-introducing deprecated API
# surface. The PR-6/PR-7 migrations moved every in-repo caller off the
# deprecated wrappers (rio.Cluster.PowerCut*/NewFS, Ctx.Recover*,
# fs.New/fs.Config, kv.Config); this grep keeps them out. The wrapper
# definitions themselves (rio/rio.go, internal/fs/fs.go,
# internal/kv/kv.go) are excluded — they must keep compiling until the
# wrappers are deleted.
set -eu
cd "$(dirname "$0")/.."

fail=0

# 1) Deprecated rio.Cluster / rio.Ctx methods, anywhere a file imports
#    the public package (the stack-level methods of the same names are
#    not deprecated, so plain internal/stack callers are fine). The
#    package's own tests don't import it, so they are added explicitly.
for f in $(grep -rl '"repro/rio"' --include='*.go' . | grep -v '^\./rio/rio\.go$') ./rio/*_test.go; do
    if grep -nE '\.(PowerCut|PowerCutTarget|PowerCutInitiator|RecoverTarget|RecoverInitiator|NewFS)\(' "$f"; then
        echo "lint_deprecated: $f calls a deprecated rio wrapper (use Fault/Recover with a Scope, or Ctx.FS)" >&2
        fail=1
    fi
done

# 2) Deprecated fs/kv config-style constructors, by qualified name so
#    the in-package definitions do not match.
if grep -rnE 'fs\.(New|DefaultConfig)\(|fs\.Config\{|kv\.DefaultConfig\(|kv\.Config\{' \
    --include='*.go' . | grep -v '^\./internal/fs/fs\.go:' | grep -v '^\./internal/kv/kv\.go:'; then
    echo "lint_deprecated: deprecated fs/kv constructors in use (use fs.Open/fs.Options, kv.Open/kv.Options)" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "lint_deprecated: ok"
