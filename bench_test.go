package repro

// One benchmark per table/figure of the paper's evaluation (§6). Each
// drives the same harness as cmd/riobench in quick mode and reports the
// headline metric so regressions in the reproduced shapes are visible in
// benchmark output. Run everything with:
//
//	go test -bench=. -benchmem
//
// For full-length sweeps use: go run ./cmd/riobench -exp all

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/fs"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/workload"
)

func runExp(b *testing.B, name string) *bench.Result {
	b.Helper()
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		r, err := bench.Run(name, bench.Options{Quick: true, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	if res == nil || len(res.Tables) == 0 {
		b.Fatal("experiment produced no tables")
	}
	b.Log("\n" + res.Render())
	return res
}

// point measures one block-bench configuration and returns KIOPS.
func point(b *testing.B, mode stack.Mode, ordered bool, threads int) workload.BlockResult {
	b.Helper()
	eng := sim.New(1)
	cfg := stack.DefaultConfig(mode, stack.OptaneTarget())
	c := stack.New(eng, cfg)
	res := workload.RunBlock(eng, c,
		workload.BlockJob{Threads: threads, Pattern: workload.PatternRandom4K, Ordered: ordered},
		200*sim.Microsecond, 2*sim.Millisecond)
	eng.Shutdown()
	return res
}

func BenchmarkFig02Motivation(b *testing.B)  { runExp(b, "fig2") }
func BenchmarkFig03MergingCPU(b *testing.B)  { runExp(b, "fig3") }
func BenchmarkFig10aFlash(b *testing.B)      { runExp(b, "fig10a") }
func BenchmarkFig10bOptane(b *testing.B)     { runExp(b, "fig10b") }
func BenchmarkFig10cTwoSSD(b *testing.B)     { runExp(b, "fig10c") }
func BenchmarkFig10dTwoTargets(b *testing.B) { runExp(b, "fig10d") }
func BenchmarkFig11WriteSizes(b *testing.B)  { runExp(b, "fig11") }
func BenchmarkFig12BatchSizes(b *testing.B)  { runExp(b, "fig12") }
func BenchmarkFig13Filesystem(b *testing.B)  { runExp(b, "fig13") }
func BenchmarkFig14Breakdown(b *testing.B)   { runExp(b, "fig14") }
func BenchmarkFig15aVarmail(b *testing.B)    { runExp(b, "fig15a") }
func BenchmarkFig15bRocksDB(b *testing.B)    { runExp(b, "fig15b") }
func BenchmarkRecoveryTime(b *testing.B)     { runExp(b, "recovery") }

// BenchmarkOrderedWriteThroughput reports the headline single-point
// numbers (12 threads, Optane, 4 KB random ordered writes) per system.
func BenchmarkOrderedWriteThroughput(b *testing.B) {
	for _, sys := range []struct {
		name    string
		mode    stack.Mode
		ordered bool
	}{
		{"rio", stack.ModeRio, true},
		{"horae", stack.ModeHorae, true},
		{"linux", stack.ModeLinux, true},
		{"orderless", stack.ModeOrderless, false},
	} {
		b.Run(sys.name, func(b *testing.B) {
			var last workload.BlockResult
			for i := 0; i < b.N; i++ {
				last = point(b, sys.mode, sys.ordered, 12)
			}
			b.ReportMetric(last.KIOPS(), "KIOPS")
			b.ReportMetric(last.InitUtil*100, "init-cpu-%")
			b.ReportMetric(last.TgtUtil*100, "target-cpu-%")
		})
	}
}

// BenchmarkFsync reports per-design fsync latency (1 thread, Optane).
func BenchmarkFsync(b *testing.B) {
	designs := []struct {
		name   string
		mode   stack.Mode
		design fs.Design
	}{
		{"riofs", stack.ModeRio, fs.RioFS},
		{"horaefs", stack.ModeHorae, fs.HoraeFS},
		{"ext4", stack.ModeOrderless, fs.Ext4},
	}
	for _, d := range designs {
		b.Run(d.name, func(b *testing.B) {
			var lat metrics.Histogram
			for i := 0; i < b.N; i++ {
				eng := sim.New(1)
				cfg := stack.DefaultConfig(d.mode, stack.OptaneTarget())
				c := stack.New(eng, cfg)
				fcfg := fs.DefaultOptions(d.design, 8)
				fcfg.JournalBlocks = 2048
				fsys := fs.Open(c.Init(0), fcfg)
				r := workload.RunFioFsync(eng, fsys, 1, 200*sim.Microsecond, 2*sim.Millisecond)
				lat = r.Lat
				eng.Shutdown()
			}
			b.ReportMetric(float64(lat.Mean())/1e3, "fsync-us")
			b.ReportMetric(float64(lat.P99())/1e3, "p99-us")
		})
	}
}

// BenchmarkRecoveryPrefix measures one full crash-recovery cycle.
func BenchmarkRecoveryPrefix(b *testing.B) {
	var order, data sim.Time
	for i := 0; i < b.N; i++ {
		eng := sim.New(int64(i + 1))
		cfg := stack.DefaultConfig(stack.ModeRio, stack.OptaneTarget(), stack.OptaneTarget())
		cfg.KeepHistory = true
		c := stack.New(eng, cfg)
		stopped := false
		for th := 0; th < 8; th++ {
			th := th
			eng.Go("wl", func(p *sim.Proc) {
				for j := 0; !stopped; j++ {
					c.OrderedWrite(p, th, uint64(th)<<22|uint64(j), 1, 0, nil, true, false, false)
					p.Sleep(2 * sim.Microsecond)
				}
			})
		}
		eng.At(100*sim.Microsecond, func() { c.PowerCutAll(); stopped = true })
		eng.RunUntil(time1ms())
		var tm stack.RecoveryTiming
		eng.Go("rec", func(p *sim.Proc) { _, tm = c.RecoverFull(p) })
		eng.Run()
		order, data = tm.OrderRebuild, tm.DataRecovery
		eng.Shutdown()
	}
	b.ReportMetric(order.Seconds()*1e3, "order-rebuild-ms")
	b.ReportMetric(data.Seconds()*1e3, "data-recovery-ms")
}

func time1ms() sim.Time { return sim.Millisecond }

// sanity: ensure figure names stay wired to the harness.
func TestBenchNamesMatchHarness(t *testing.T) {
	for _, n := range bench.Names() {
		if !strings.HasPrefix(n, "fig") && n != "recovery" && n != "ablation" && n != "tcp" && n != "scale" && n != "replication" && n != "policy" && n != "serve" && n != "read" && n != "satload" && n != "trace" {
			t.Errorf("unexpected experiment name %q", n)
		}
	}
}

// BenchmarkAblations exercises the Principle-2 and PMR-latency ablations.
func BenchmarkAblations(b *testing.B) { runExp(b, "ablation") }

// BenchmarkTCPTransport runs the NVMe/TCP variant (§4.5, Principle 2).
func BenchmarkTCPTransport(b *testing.B) { runExp(b, "tcp") }
