// Package librio is the userspace asynchronous I/O interface of §4.6: the
// paper suggests applications built on the block device (e.g. BlueStore,
// KVell) replace libaio with librio, a wrapper over rio_submit/rio_wait.
//
// The API mirrors an aio ring: a fixed submission depth, non-blocking
// Submit, and completion harvesting that — because Rio completes in order
// — always returns completions in storage order. A ring inherits the
// initiator of the Ctx it is built from (rio.Cluster.GoOn), so a
// multi-initiator deployment gets one set of rings per initiator, each
// an independent ordering domain:
//
//	ring := librio.NewRing(ctx, 0, 128)
//	id, _ := ring.Write(librio.Op{LBA: 4096, Blocks: 8, Boundary: true})
//	ring.WaitMin(1)                 // harvest at least one completion
package librio

import (
	"fmt"

	"repro/rio"
)

// Op describes one ordered write.
type Op struct {
	LBA      uint64
	Blocks   uint32
	Boundary bool // end of the current ordered group
	Flush    bool // carry the durability barrier
	IPU      bool // in-place update
}

// Completion reports one finished operation, delivered in storage order.
type Completion struct {
	ID    uint64
	Op    Op
	Group uint64 // the group sequence number the sequencer assigned
}

type inflight struct {
	id     uint64
	op     Op
	handle *rio.Handle
}

// Ring is an asynchronous submission/completion ring bound to one stream.
// It is not safe for concurrent use from multiple simulated threads; use
// one ring per thread (matching the stream-per-thread model of §4.5).
type Ring struct {
	ctx    *rio.Ctx
	stream *rio.Stream
	depth  int
	nextID uint64
	queue  []inflight
}

// NewRing creates a ring of the given depth over stream id.
func NewRing(ctx *rio.Ctx, stream int, depth int) *Ring {
	if depth <= 0 {
		panic("librio: ring depth must be positive")
	}
	return &Ring{ctx: ctx, stream: ctx.Stream(stream), depth: depth}
}

// Depth returns the configured submission depth.
func (r *Ring) Depth() int { return r.depth }

// Inflight returns the number of unharvested operations.
func (r *Ring) Inflight() int { return len(r.queue) }

// Write submits one ordered write. It fails with ErrRingFull when depth
// operations are unharvested (harvest with Poll or WaitMin first).
func (r *Ring) Write(op Op) (uint64, error) {
	if len(r.queue) >= r.depth {
		return 0, ErrRingFull
	}
	var h *rio.Handle
	switch {
	case op.IPU:
		h = r.stream.WriteIPU(op.LBA, op.Blocks, op.Boundary)
	case op.Flush && op.Boundary:
		h = r.stream.Commit(op.LBA, op.Blocks)
	case op.Boundary:
		h = r.stream.Close(op.LBA, op.Blocks)
	default:
		h = r.stream.Write(op.LBA, op.Blocks)
	}
	r.nextID++
	r.queue = append(r.queue, inflight{id: r.nextID, op: op, handle: h})
	return r.nextID, nil
}

// ErrRingFull is returned by Write when the ring is at depth.
var ErrRingFull = fmt.Errorf("librio: ring full")

// Poll harvests up to max completed operations without blocking. Because
// Rio delivers completions in storage order, the ring head is complete
// before any later entry, so harvesting is a prefix scan.
func (r *Ring) Poll(max int) []Completion {
	var out []Completion
	for len(r.queue) > 0 && (max <= 0 || len(out) < max) {
		head := r.queue[0]
		if !head.handle.Done() {
			break
		}
		out = append(out, Completion{
			ID:    head.id,
			Op:    head.op,
			Group: head.handle.Attr().SeqStart,
		})
		r.queue = r.queue[1:]
	}
	return out
}

// WaitMin blocks until at least n operations can be harvested (or the
// ring has fewer than n in flight, in which case it waits for all) and
// returns them.
func (r *Ring) WaitMin(n int) []Completion {
	if n > len(r.queue) {
		n = len(r.queue)
	}
	if n == 0 {
		return nil
	}
	r.queue[n-1].handle.Wait()
	return r.Poll(n + len(r.queue)) // everything done up to and beyond n
}

// Drain waits for every in-flight operation.
func (r *Ring) Drain() []Completion {
	return r.WaitMin(len(r.queue))
}

// Barrier waits for every in-flight operation; transaction commit paths
// call it after submitting a Flush-carrying boundary write, making the
// whole transaction durable and ordered.
func (r *Ring) Barrier() []Completion { return r.Drain() }
