package librio

import (
	"testing"

	"repro/rio"
)

func TestRingSubmitHarvest(t *testing.T) {
	c := rio.NewCluster(rio.Options{Seed: 1})
	defer c.Close()
	c.Go(func(ctx *rio.Ctx) {
		r := NewRing(ctx, 0, 16)
		var ids []uint64
		for i := 0; i < 10; i++ {
			id, err := r.Write(Op{LBA: uint64(i * 8), Blocks: 1, Boundary: true})
			if err != nil {
				t.Error(err)
				return
			}
			ids = append(ids, id)
		}
		if r.Inflight() != 10 {
			t.Errorf("inflight = %d", r.Inflight())
		}
		got := r.Drain()
		if len(got) != 10 {
			t.Fatalf("harvested %d of 10", len(got))
		}
		// Completions arrive in submission (= storage) order.
		for i, cp := range got {
			if cp.ID != ids[i] {
				t.Errorf("completion %d = id %d, want %d", i, cp.ID, ids[i])
			}
			if cp.Group != uint64(i+1) {
				t.Errorf("completion %d group = %d, want %d", i, cp.Group, i+1)
			}
		}
		if r.Inflight() != 0 {
			t.Error("ring not drained")
		}
	})
	c.Run()
}

func TestRingFullBackpressure(t *testing.T) {
	c := rio.NewCluster(rio.Options{Seed: 2})
	defer c.Close()
	c.Go(func(ctx *rio.Ctx) {
		r := NewRing(ctx, 0, 2)
		r.Write(Op{LBA: 0, Blocks: 1, Boundary: true})
		r.Write(Op{LBA: 8, Blocks: 1, Boundary: true})
		if _, err := r.Write(Op{LBA: 16, Blocks: 1, Boundary: true}); err != ErrRingFull {
			t.Errorf("err = %v, want ErrRingFull", err)
		}
		r.WaitMin(1)
		if _, err := r.Write(Op{LBA: 16, Blocks: 1, Boundary: true}); err != nil {
			t.Errorf("write after harvest: %v", err)
		}
		r.Drain()
	})
	c.Run()
}

func TestWaitMinPartialHarvest(t *testing.T) {
	c := rio.NewCluster(rio.Options{Seed: 3})
	defer c.Close()
	c.Go(func(ctx *rio.Ctx) {
		r := NewRing(ctx, 0, 32)
		for i := 0; i < 8; i++ {
			r.Write(Op{LBA: uint64(i), Blocks: 1, Boundary: true})
		}
		got := r.WaitMin(3)
		if len(got) < 3 {
			t.Fatalf("WaitMin(3) returned %d", len(got))
		}
		rest := r.Drain()
		if len(got)+len(rest) != 8 {
			t.Fatalf("total harvested = %d", len(got)+len(rest))
		}
	})
	c.Run()
}

func TestTransactionPattern(t *testing.T) {
	c := rio.NewCluster(rio.Options{Seed: 4})
	defer c.Close()
	c.Go(func(ctx *rio.Ctx) {
		r := NewRing(ctx, 0, 64)
		// A BlueStore-ish transaction: data extents, metadata, commit.
		r.Write(Op{LBA: 1000, Blocks: 8})                           // data
		r.Write(Op{LBA: 1008, Blocks: 8, Boundary: true})           // data, end group
		r.Write(Op{LBA: 8, Blocks: 1, Boundary: true})              // metadata
		r.Write(Op{LBA: 0, Blocks: 1, Boundary: true, Flush: true}) // commit
		cps := r.Barrier()
		if len(cps) != 4 {
			t.Fatalf("transaction harvested %d of 4", len(cps))
		}
		if !cps[3].Op.Flush {
			t.Error("commit completion lost its flush marker")
		}
	})
	c.Run()
}

func TestPollNonBlocking(t *testing.T) {
	c := rio.NewCluster(rio.Options{Seed: 5})
	defer c.Close()
	c.Go(func(ctx *rio.Ctx) {
		r := NewRing(ctx, 0, 8)
		if got := r.Poll(4); len(got) != 0 {
			t.Errorf("poll on empty ring = %d", len(got))
		}
		r.Write(Op{LBA: 0, Blocks: 1, Boundary: true})
		// Immediately after submit nothing is complete yet.
		if got := r.Poll(4); len(got) != 0 {
			t.Errorf("poll right after submit = %d completions", len(got))
		}
		r.Drain()
	})
	c.Run()
}

// TestRingsPerInitiator: rings built from contexts on different
// initiators are independent ordering domains — both make progress, and
// each harvests its own completions in its own storage order.
func TestRingsPerInitiator(t *testing.T) {
	c := rio.NewCluster(rio.Options{Seed: 6, Initiators: 2, Streams: 4})
	defer c.Close()
	harvested := make([]int, 2)
	for ii := 0; ii < 2; ii++ {
		ii := ii
		c.GoOn(ii, func(ctx *rio.Ctx) {
			if ctx.Initiator() != ii {
				t.Errorf("ctx bound to initiator %d, want %d", ctx.Initiator(), ii)
			}
			r := NewRing(ctx, 0, 32)
			for i := 0; i < 20; i++ {
				if _, err := r.Write(Op{LBA: uint64(ii*10000 + i), Blocks: 1, Boundary: true}); err != nil {
					t.Errorf("initiator %d write %d: %v", ii, i, err)
				}
			}
			cps := r.Barrier()
			harvested[ii] = len(cps)
			for i := 1; i < len(cps); i++ {
				if cps[i].Group <= cps[i-1].Group {
					t.Errorf("initiator %d: groups out of order: %d after %d",
						ii, cps[i].Group, cps[i-1].Group)
				}
			}
		})
	}
	c.Run()
	for ii, n := range harvested {
		if n != 20 {
			t.Fatalf("initiator %d harvested %d of 20", ii, n)
		}
	}
}
