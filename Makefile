GO ?= go
STATICCHECK ?= staticcheck

.PHONY: all build test race vet fmt fmt-check staticcheck lint lint-deprecated bench bench-json bench-gate coverage examples ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Static analysis beyond vet. Skips with a notice when the binary is not
# installed, UNLESS STATICCHECK_REQUIRED=1 (CI sets it after installing,
# so a PATH problem fails the gate instead of silently passing).
staticcheck:
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	elif [ -n "$(STATICCHECK_REQUIRED)" ]; then \
		echo "staticcheck required but not installed"; exit 1; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Grep gate against re-introducing deprecated API surface (PowerCut*/
# Recover* wrappers, fs.New/Config, kv.Config) outside the wrapper
# definitions themselves.
lint-deprecated:
	sh scripts/lint_deprecated.sh

# The lint gate CI runs: formatting, vet, staticcheck, deprecated-API grep.
lint: fmt-check vet staticcheck lint-deprecated

# Quick smoke of every experiment (same command CI runs).
bench: build
	$(GO) run ./cmd/riobench -exp all -quick

# Regenerate the tracked perf-trajectory snapshot.
bench-json: build
	$(GO) run ./cmd/riobench -exp scale,replication,policy,serve,read,satload,trace -quick -json BENCH_10.json

# Run every example with its built-in tiny config (CI smoke: example
# drift fails the build).
examples: build
	@set -e; for d in examples/*/; do \
		echo "== go run ./$$d"; $(GO) run ./$$d; done

# The CI perf gate: run the gated experiments fresh and fail on >10%
# regression in the gated metrics vs the committed baseline.
bench-gate: build
	$(GO) run ./cmd/riobench -exp scale,replication,policy,serve,read,satload,trace -quick -json /tmp/bench-gate.json
	$(GO) run ./cmd/benchdiff -new /tmp/bench-gate.json

# Coverage profile over the ordering engine and the stack that drives it
# (CI uploads the profile as an artifact).
coverage: build
	$(GO) test -coverprofile=coverage.out -coverpkg=./internal/order/...,./internal/stack/... ./internal/order/... ./internal/stack/...
	$(GO) tool cover -func=coverage.out | tail -1

ci: lint build race bench bench-gate examples
