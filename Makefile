GO ?= go

.PHONY: all build test race vet fmt fmt-check bench bench-json ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Quick smoke of every experiment (same command CI runs).
bench: build
	$(GO) run ./cmd/riobench -exp all -quick

# Regenerate the tracked perf-trajectory snapshot.
bench-json: build
	$(GO) run ./cmd/riobench -exp scale -quick -json BENCH_1.json

ci: fmt-check vet build race bench
