GO ?= go

.PHONY: all build test race vet fmt fmt-check bench bench-json bench-gate examples ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Quick smoke of every experiment (same command CI runs).
bench: build
	$(GO) run ./cmd/riobench -exp all -quick

# Regenerate the tracked perf-trajectory snapshot.
bench-json: build
	$(GO) run ./cmd/riobench -exp scale -quick -json BENCH_3.json

# Run every example with its built-in tiny config (CI smoke: example
# drift fails the build).
examples: build
	@set -e; for d in examples/*/; do \
		echo "== go run ./$$d"; $(GO) run ./$$d; done

# The CI perf gate: run the scale experiment fresh and fail on >10%
# regression in the gated metrics vs the committed baseline.
bench-gate: build
	$(GO) run ./cmd/riobench -exp scale -quick -json /tmp/bench-gate.json
	$(GO) run ./cmd/benchdiff -new /tmp/bench-gate.json

ci: fmt-check vet build race bench bench-gate examples
